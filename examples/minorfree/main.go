// Command minorfree demonstrates the Corollary 16 testers: distributed
// one-sided testing of cycle-freeness and bipartiteness under the
// minor-free promise, in O(poly(1/eps) log n) rounds.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minorfree:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(5))
	opts := repro.PropertyOptions{Epsilon: 0.2}

	cases := []struct {
		name string
		g    *repro.Graph
		prop repro.Property
		want bool // expected rejection
	}{
		{"random tree n=80", repro.RandomTree(80, rng), repro.CycleFreeness, false},
		{"tree + 30 extra edges", treePlus(80, 30, rng), repro.CycleFreeness, true},
		{"grid 10x10 (bipartite)", repro.Grid(10, 10), repro.Bipartiteness, false},
		{"maximal planar n=80 (triangles)", repro.MaximalPlanar(80, rng), repro.Bipartiteness, true},
	}
	fmt.Printf("%-34s %-16s %-9s %8s\n", "graph", "property", "verdict", "rounds")
	for i, c := range cases {
		res, err := repro.TestProperty(c.g, c.prop, opts, int64(20+i))
		if err != nil {
			return err
		}
		verdict := "accept"
		if res.Rejected {
			verdict = "REJECT"
		}
		fmt.Printf("%-34s %-16s %-9s %8d\n", c.name, c.prop, verdict, res.Metrics.Rounds)
		if res.Rejected != c.want {
			return fmt.Errorf("%s: unexpected verdict %v", c.name, res.Rejected)
		}
	}
	fmt.Println("\nall verdicts as expected: properties hold <=> every node accepts.")
	return nil
}

func treePlus(n, extra int, rng *rand.Rand) *repro.Graph {
	g := repro.RandomTree(n, rng)
	// Add extra random edges; each closes a cycle.
	b := g.Clone()
	added := 0
	for added < extra {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.AddEdge(u, v)
		g = b.Build()
		b = g.Clone()
		added++
	}
	return b.Build()
}
