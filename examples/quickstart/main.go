// Command quickstart demonstrates the distributed planarity tester on a
// planar grid and on a graph that is far from planar: build a graph, run
// the tester, inspect the per-run verdict and CONGEST metrics.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A planar input: every node must accept (the tester has one-sided
	// error).
	grid := repro.Grid(12, 12)
	res, err := repro.TestPlanarity(grid, repro.TesterOptions{Epsilon: 0.25}, 1)
	if err != nil {
		return err
	}
	fmt.Printf("12x12 grid (n=%d m=%d): rejected=%v  rounds=%d  messages=%d  maxMsgBits=%d (bound %d)\n",
		grid.N(), grid.M(), res.Rejected, res.Metrics.Rounds,
		res.Metrics.Messages, res.Metrics.MaxMessageBits, res.Metrics.BitBound)

	// A far-from-planar input: a random maximal planar graph with 80
	// extra random edges. The Euler bound certifies that at least
	// `dist` edges must be removed to restore planarity.
	rng := rand.New(rand.NewSource(2))
	far, dist := repro.PlanarPlusRandomEdges(100, 80, rng)
	eps := float64(dist) / float64(far.M())
	fmt.Printf("\nfar graph (n=%d m=%d): certified distance %d (eps=%.3f)\n",
		far.N(), far.M(), dist, eps)
	res, err = repro.TestPlanarity(far, repro.TesterOptions{Epsilon: eps / 2}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("tester verdict: rejected=%v (by %d node(s)) after %d rounds\n",
		res.Rejected, res.RejectedBy, res.Metrics.Rounds)

	// Detection is probabilistic on far inputs; measure it across seeds.
	rate, err := repro.DetectionRate(far, repro.TesterOptions{Epsilon: eps / 2}, 5, 100)
	if err != nil {
		return err
	}
	fmt.Printf("detection rate over 5 seeds: %.0f%%\n", 100*rate)
	return nil
}
