// Command spanner builds the ultra-sparse spanner of Corollary 17 on
// planar inputs and reports its size and measured stretch: a minor-free
// graph gets a poly(1/eps)-spanner with (1+O(eps))n edges,
// deterministically — compare with the (2k-1)-spanner tradeoffs for
// general graphs discussed in §1.2.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/spanner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spanner:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	inputs := []struct {
		name string
		g    *repro.Graph
	}{
		{"grid 20x20", repro.Grid(20, 20)},
		{"maximal planar n=300", repro.MaximalPlanar(300, rng)},
		{"random planar n=300 m=600", repro.RandomPlanar(300, 600, rng)},
	}
	fmt.Printf("%-26s %8s %8s %10s %12s %12s\n",
		"graph", "n", "m", "eps", "spanner m/n", "max stretch")
	for _, in := range inputs {
		for _, eps := range []float64{0.5, 0.25, 0.125} {
			sp, views, _, err := spanner.Collect(in.g, spanner.Options{Epsilon: eps}, 11)
			if err != nil {
				return err
			}
			maxS, _ := spanner.MeasureStretch(in.g, sp, 300, rng)
			_ = views
			fmt.Printf("%-26s %8d %8d %10.3f %12.3f %12.1f\n",
				in.name, in.g.N(), in.g.M(), eps,
				float64(sp.M())/float64(in.g.N()), maxS)
		}
	}
	fmt.Println("\nsize stays near n (ultra-sparse) while stretch stays bounded;")
	fmt.Println("smaller eps buys a smaller cut (fewer extra edges) at more rounds.")
	return nil
}
