// Command lowerbound materializes the Ω(log n) lower-bound argument of
// §3 (Theorem 2): it builds graphs that are certified constant-far from
// planarity yet locally tree-like, so that any one-sided tester running
// fewer than Θ(log n) rounds sees only forests and must accept — while
// the full tester, given its Θ(log n) rounds, does reject them.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/lowerbound"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(9))
	fmt.Printf("%8s %8s %10s %12s %14s %16s\n",
		"n", "girth>=", "cert. eps", "tree radius", "tree views", "tester rejects")
	for _, n := range []int{256, 512, 1024, 2048} {
		ins := repro.NewLowerBoundInstance(n, 8, 33)
		r := (ins.MinGirth - 2) / 2
		frac := lowerbound.FractionTreeViews(ins.G, r, 200, rng)
		res, err := repro.TestPlanarity(ins.G, repro.TesterOptions{Epsilon: ins.Epsilon / 2}, 44)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %8d %10.3f %12d %13.0f%% %16v\n",
			n, ins.MinGirth, ins.Epsilon, r, 100*frac, res.Rejected)
	}
	fmt.Println("\nwithin the girth radius every view is a forest: an r-round one-sided")
	fmt.Println("tester cannot distinguish the graph from a planar one and must accept;")
	fmt.Println("the girth (hence the required round count) grows with log n.")
	return nil
}
