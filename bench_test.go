package repro_test

// One benchmark per experiment (E1-E12 in DESIGN.md). The paper has no
// empirical tables, so each benchmark regenerates the measurement backing
// the corresponding theorem/claim; simulated CONGEST rounds are reported
// as a custom metric alongside wall time. cmd/experiments prints the full
// tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/planar"
	"repro/internal/spanner"
	"repro/internal/testers"
)

// BenchmarkE1RoundsVsN: Theorem 1 round complexity on a planar grid with
// the fixed-phase schedule (the regime where rounds/log n converges).
func BenchmarkE1RoundsVsN(b *testing.B) {
	g := graph.Grid(12, 12)
	opts := core.Options{Epsilon: 0.25}
	opts.Partition = partition.Options{Epsilon: 0.25, Schedule: partition.PracticalSchedule}
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := core.RunTester(g, opts, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rejected {
			b.Fatal("planar grid rejected")
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}

// BenchmarkE2Detection: Theorem 1 detection on a certified-far input.
func BenchmarkE2Detection(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, dist := graph.PlanarPlusRandomEdges(100, 80, rng)
	eps := float64(dist) / float64(g.M())
	detected := 0
	for i := 0; i < b.N; i++ {
		res, err := core.RunTester(g, core.Options{Epsilon: eps / 2}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rejected {
			detected++
		}
	}
	b.ReportMetric(float64(detected)/float64(b.N), "detection-rate")
}

// BenchmarkE3Contraction: Claims 1/14 per-phase cut contraction (three
// phases of the deterministic Stage I).
func BenchmarkE3Contraction(b *testing.B) {
	g := graph.Grid(10, 10)
	var cut int
	for i := 0; i < b.N; i++ {
		outs, _, _, err := partition.CollectStageI(g,
			partition.Options{Epsilon: 0.25, MaxPhases: 3}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cut = partition.CutEdges(g, outs)
	}
	b.ReportMetric(float64(cut), "cut-after-3-phases")
}

// BenchmarkE4Diameter: Claim 4 part-diameter bound after four phases.
func BenchmarkE4Diameter(b *testing.B) {
	g := graph.Grid(10, 10)
	var d int
	for i := 0; i < b.N; i++ {
		outs, _, _, err := partition.CollectStageI(g,
			partition.Options{Epsilon: 0.25, MaxPhases: 4}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		d = partition.MaxPartDiameter(g, outs)
		if d > partition.DiamBound(5) {
			b.Fatalf("diameter %d exceeds bound", d)
		}
	}
	b.ReportMetric(float64(d), "max-part-diameter")
}

// BenchmarkE5Cut: Claim 3 final cut bound on the full deterministic
// partition.
func BenchmarkE5Cut(b *testing.B) {
	g := graph.Grid(10, 10)
	eps := 0.25
	var cut int
	for i := 0; i < b.N; i++ {
		outs, _, _, err := partition.CollectStageI(g, partition.Options{Epsilon: eps}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		cut = partition.CutEdges(g, outs)
		if float64(cut) > eps*float64(g.M())/2 {
			b.Fatalf("cut %d exceeds eps*m/2", cut)
		}
	}
	b.ReportMetric(float64(cut), "cut-edges")
}

// BenchmarkE6Violations: Corollary 9 violating-edge count on a far input.
func BenchmarkE6Violations(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, dist := graph.PlanarPlusRandomEdges(80, 40, rng)
	parent := g.BFS(0).Parent
	var v int
	for i := 0; i < b.N; i++ {
		res := planar.EmbedOrFallback(g, planar.FallbackArbitrary)
		v, _ = core.CountViolations(g, 0, parent, res.Embedding)
		if v < dist {
			b.Fatalf("violations %d below certified distance %d", v, dist)
		}
	}
	b.ReportMetric(float64(v), "violating-edges")
}

// BenchmarkE7LowerBound: Theorem 2 instance construction plus the
// tree-view certificate.
func BenchmarkE7LowerBound(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var frac float64
	for i := 0; i < b.N; i++ {
		ins := lowerbound.New(1024, 8, int64(i))
		if !ins.GirthAtLeast() {
			b.Fatal("girth surgery failed")
		}
		frac = lowerbound.FractionTreeViews(ins.G, (ins.MinGirth-2)/2, 100, rng)
		if frac != 1 {
			b.Fatal("non-tree view below the girth radius")
		}
	}
	b.ReportMetric(frac, "tree-view-fraction")
}

// BenchmarkE8Randomized: Theorem 4 randomized partition.
func BenchmarkE8Randomized(b *testing.B) {
	g := graph.Grid(10, 10)
	eps := 0.25
	var rounds int
	for i := 0; i < b.N; i++ {
		outs, _, res, err := partition.CollectStageI(g,
			partition.Options{Epsilon: eps, Variant: partition.Randomized, Delta: 0.125}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = outs
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}

// BenchmarkE9MinorFree: Corollary 16 testers (accept and reject paths).
func BenchmarkE9MinorFree(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	far := graph.TreePlusRandomEdges(80, 30, rng)
	grid := graph.Grid(8, 8)
	opts := testers.Options{Epsilon: 0.2,
		Partition: partition.Options{Epsilon: 0.2, Variant: partition.Randomized}}
	for i := 0; i < b.N; i++ {
		r1, err := testers.Run(far, testers.CycleFreeness, opts, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !r1.Rejected {
			b.Fatal("far-from-cycle-free input accepted")
		}
		r2, err := testers.Run(grid, testers.Bipartiteness, opts, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if r2.Rejected {
			b.Fatal("bipartite grid rejected")
		}
	}
}

// BenchmarkE10Spanner: Corollary 17 spanner size and stretch.
func BenchmarkE10Spanner(b *testing.B) {
	g := graph.Grid(12, 12)
	rng := rand.New(rand.NewSource(10))
	var ratio float64
	for i := 0; i < b.N; i++ {
		sp, _, _, err := spanner.Collect(g, spanner.Options{Epsilon: 0.25}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(sp.M()) / float64(g.N())
		if ratio > 1.5 {
			b.Fatalf("size ratio %.3f exceeds bound", ratio)
		}
		if maxS, _ := spanner.MeasureStretch(g, sp, 50, rng); maxS < 0 {
			b.Fatal("spanner disconnected")
		}
	}
	b.ReportMetric(ratio, "edges-per-node")
}

// BenchmarkE11Baseline: the Elkin–Neiman-based tester (§1.1 variant).
func BenchmarkE11Baseline(b *testing.B) {
	g := graph.Grid(12, 12)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := core.RunTester(g, core.Options{Epsilon: 0.25, UseEN: true}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rejected {
			b.Fatal("planar grid rejected")
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}

// BenchmarkLargeN: the full native tester on 10^5/10^6-node inputs — the
// scale the goroutine-free engine was built for (ROADMAP large-n item).
// Families: connected random planar graphs (accept path) and sparse
// K5-subdivisions (non-planar but below the eps threshold, so the whole
// pipeline runs). eps = 0.5 keeps parts — and thus the Stage II label
// machinery — small enough that the 10^5 sizes fit a CI budget; the
// 10^6-node sizes are skipped in -short mode (CI).
func BenchmarkLargeN(b *testing.B) {
	opts := core.Options{Epsilon: 0.5}
	opts.Partition = partition.Options{Epsilon: 0.5, Schedule: partition.PracticalSchedule}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		if n > 100_000 && testing.Short() {
			continue
		}
		b.Run(fmt.Sprintf("planar-n%d", n), func(b *testing.B) {
			g := graph.RandomPlanar(n, 3*n/2, rand.New(rand.NewSource(int64(n))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunTester(g, opts, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if res.Rejected {
					b.Fatal("planar input rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("k5subdiv-n%d", n), func(b *testing.B) {
			g := graph.K5Subdivision(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunTester(g, opts, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOracle: the exact sequential fast path (internal/oracle) on
// the same planar instances as BenchmarkLargeN's accept path. The
// mode=exact speedup over the CONGEST tester is the ratio of this
// benchmark to BenchmarkLargeN/planar-n<N> in the same BENCH_*.json;
// the differential-corpus work requires >= 100x at n=10^5.
func BenchmarkOracle(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("planar-n%d", n), func(b *testing.B) {
			g := graph.RandomPlanar(n, 3*n/2, rand.New(rand.NewSource(int64(n))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := oracle.Decide(g)
				if !res.Planar {
					b.Fatal("planar input rejected")
				}
			}
		})
	}
}

// BenchmarkE12Congestion: CONGEST conformance accounting over a full run.
func BenchmarkE12Congestion(b *testing.B) {
	g := graph.Grid(10, 10)
	var maxBits int
	for i := 0; i < b.N; i++ {
		res, err := repro.TestPlanarity(g, repro.TesterOptions{Epsilon: 0.25}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		maxBits = res.Metrics.MaxMessageBits
		if maxBits > res.Metrics.BitBound {
			b.Fatal("bit bound exceeded")
		}
	}
	b.ReportMetric(float64(maxBits), "max-message-bits")
}
